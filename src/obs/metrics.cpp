#include "obs/metrics.hpp"

#include <algorithm>

namespace meteo::obs {

namespace {

/// Keys within a label set must be unique (after normalisation,
/// duplicates are adjacent).
[[nodiscard]] bool keys_unique(const Labels& labels) {
  return std::adjacent_find(labels.begin(), labels.end(),
                            [](const Label& a, const Label& b) {
                              return a.first == b.first;
                            }) == labels.end();
}

[[nodiscard]] bool strictly_increasing(const std::vector<double>& bounds) {
  return std::adjacent_find(bounds.begin(), bounds.end(),
                            [](double a, double b) { return a >= b; }) ==
         bounds.end();
}

/// True when `series` carries every label of `subset`.
[[nodiscard]] bool contains_labels(const Labels& series, const Labels& subset) {
  for (const Label& want : subset) {
    if (std::find(series.begin(), series.end(), want) == series.end()) {
      return false;
    }
  }
  return true;
}

template <typename Map>
[[nodiscard]] auto find_series(const Map& map, std::string_view name,
                               const Labels& labels) -> decltype(&map.begin()->second) {
  const auto it = map.find(MetricKey{std::string(name), normalized(labels)});
  return it == map.end() ? nullptr : &it->second;
}

}  // namespace

std::string format_labels(const Labels& labels) {
  std::string out;
  for (const Label& label : labels) {
    if (!out.empty()) out += ';';
    out += label.first;
    out += '=';
    out += label.second;
  }
  return out;
}

void HistogramData::observe(double value) {
  const auto it =
      std::lower_bound(upper_bounds.begin(), upper_bounds.end(), value);
  const auto index = static_cast<std::size_t>(it - upper_bounds.begin());
  ++buckets[index];
  ++count;
  sum += value;
  if (count == 1 || value < min_) min_ = value;
  if (count == 1 || value > max_) max_ = value;
}

void HistogramData::reset_values() {
  std::fill(buckets.begin(), buckets.end(), std::uint64_t{0});
  count = 0;
  sum = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

Counter MetricRegistry::counter(std::string name, Labels labels) {
  labels = normalized(std::move(labels));
  METEO_EXPECTS(keys_unique(labels));
  auto [it, inserted] = counters_.try_emplace(
      MetricKey{std::move(name), std::move(labels)}, std::uint64_t{0});
  (void)inserted;
  return Counter(&it->second);
}

Gauge MetricRegistry::gauge(std::string name, Labels labels) {
  labels = normalized(std::move(labels));
  METEO_EXPECTS(keys_unique(labels));
  auto [it, inserted] =
      gauges_.try_emplace(MetricKey{std::move(name), std::move(labels)}, 0.0);
  (void)inserted;
  return Gauge(&it->second);
}

Histogram MetricRegistry::histogram(std::string name,
                                    std::vector<double> upper_bounds,
                                    Labels labels) {
  labels = normalized(std::move(labels));
  METEO_EXPECTS(keys_unique(labels));
  METEO_EXPECTS(strictly_increasing(upper_bounds));
  auto [it, inserted] = histograms_.try_emplace(
      MetricKey{std::move(name), std::move(labels)});
  if (inserted) {
    it->second.upper_bounds = std::move(upper_bounds);
    it->second.buckets.assign(it->second.upper_bounds.size() + 1, 0);
  } else {
    // A series' bucket layout is fixed at creation; asking again with a
    // different layout is a schema bug, not a runtime condition.
    METEO_EXPECTS(it->second.upper_bounds == upper_bounds);
  }
  return Histogram(&it->second);
}

std::uint64_t MetricRegistry::counter_value(std::string_view name,
                                            const Labels& labels) const {
  const std::uint64_t* cell = find_series(counters_, name, labels);
  return cell == nullptr ? 0 : *cell;
}

double MetricRegistry::gauge_value(std::string_view name,
                                   const Labels& labels) const {
  const double* cell = find_series(gauges_, name, labels);
  return cell == nullptr ? 0.0 : *cell;
}

const HistogramData* MetricRegistry::find_histogram(std::string_view name,
                                                    const Labels& labels) const {
  return find_series(histograms_, name, labels);
}

std::uint64_t MetricRegistry::counter_total(std::string_view name) const {
  return counter_total(name, Labels{});
}

std::uint64_t MetricRegistry::counter_total(std::string_view name,
                                            const Labels& subset) const {
  std::uint64_t total = 0;
  // Series sharing a name are contiguous in the ordered map.
  for (auto it = counters_.lower_bound(MetricKey{std::string(name), {}});
       it != counters_.end() && it->first.name == name; ++it) {
    if (contains_labels(it->first.labels, subset)) total += it->second;
  }
  return total;
}

void MetricRegistry::reset() {
  for (auto& [key, value] : counters_) value = 0;
  for (auto& [key, value] : gauges_) value = 0.0;
  for (auto& [key, data] : histograms_) data.reset_values();
}

std::vector<double> hop_buckets() {
  return {0, 1, 2, 3, 4, 5, 6, 8, 10, 12, 16, 24, 32, 48, 64, 96, 128};
}

std::vector<double> cost_buckets() {
  return {0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024};
}

std::vector<double> count_buckets() {
  return {0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384};
}

}  // namespace meteo::obs
