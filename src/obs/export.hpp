#pragma once

/// \file export.hpp
/// Deterministic serialisers for the metric registry and trace log.
///
/// Formats (documented with worked examples in docs/OBSERVABILITY.md):
///  - metrics_to_json: one JSON object with "counters" / "gauges" /
///    "histograms" arrays, one series per line.
///  - metrics_to_csv: flat rows `type,name,labels,field,value`.
///  - trace_to_chrome_json: Chrome trace_event format ("X" complete
///    events for spans, "i" instants for hop/fault events) loadable in
///    chrome://tracing or Perfetto.
///
/// All three are byte-deterministic for equal inputs: series iterate in
/// map (sorted-key) order, spans in commit order, and doubles print via
/// "%.17g" so values round-trip exactly.

#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace meteo::obs {

[[nodiscard]] std::string metrics_to_json(const MetricRegistry& registry);
[[nodiscard]] std::string metrics_to_csv(const MetricRegistry& registry);
[[nodiscard]] std::string trace_to_chrome_json(const TraceLog& log);

/// Serialise a double with "%.17g" (shortest text that round-trips).
[[nodiscard]] std::string format_double(double value);

/// Write `contents` to `path`, truncating. Returns false (and leaves a
/// message on stderr) on failure.
bool write_file(const std::string& path, const std::string& contents);

}  // namespace meteo::obs
