#pragma once

/// \file cdf.hpp
/// Empirical cumulative distribution functions and monotone piecewise-linear
/// maps. These are the mathematical substrate for Meteorograph's
/// unused-hash-space exploitation (Eq. 6): a sampled key CDF is reduced to a
/// few knee points and the resulting piecewise-linear map re-spreads keys
/// uniformly while preserving their order.

#include <cstddef>
#include <span>
#include <vector>

namespace meteo {

/// A (x, y) knot of a monotone piecewise-linear function.
struct Knot {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Knot&, const Knot&) = default;
};

/// Monotone non-decreasing piecewise-linear map through a knot sequence.
///
/// Inputs below the first knot clamp to the first knot's y; inputs above
/// the last knot clamp to the last knot's y. Monotonicity of the knots is a
/// precondition and is what guarantees Eq. 6 preserves key ordering (and
/// therefore similarity adjacency).
class PiecewiseLinearMap {
 public:
  /// \pre knots.size() >= 2, strictly increasing in x, non-decreasing in y
  explicit PiecewiseLinearMap(std::vector<Knot> knots);

  [[nodiscard]] double operator()(double x) const noexcept;

  /// Inverse map (swaps x and y). Flat segments invert to their left edge.
  [[nodiscard]] PiecewiseLinearMap inverse() const;

  [[nodiscard]] std::span<const Knot> knots() const noexcept { return knots_; }

 private:
  std::vector<Knot> knots_;
};

/// Empirical CDF over a sample set.
class EmpiricalCdf {
 public:
  /// Builds from samples (copied and sorted). \pre !samples.empty()
  explicit EmpiricalCdf(std::span<const double> samples);

  /// P(X <= x) in [0, 1].
  [[nodiscard]] double fraction_at(double x) const noexcept;

  /// Smallest sample value v with P(X <= v) >= q. \pre 0 <= q <= 1
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] std::size_t sample_count() const noexcept {
    return sorted_.size();
  }
  [[nodiscard]] double min() const noexcept { return sorted_.front(); }
  [[nodiscard]] double max() const noexcept { return sorted_.back(); }

  /// Reduces the CDF to `points` evenly spaced (in x) knots spanning
  /// [min, max] — the curve fed to knee detection and to plots.
  /// \pre points >= 2
  [[nodiscard]] std::vector<Knot> resample(std::size_t points) const;

 private:
  std::vector<double> sorted_;
};

}  // namespace meteo
