#pragma once

/// \file stats.hpp
/// Streaming and batch statistics used by every experiment:
/// Welford online moments, fixed-bin histograms, percentiles, and the Gini
/// coefficient (the load-imbalance metric for Fig. 8-style experiments).

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/assert.hpp"

namespace meteo {

/// Numerically stable streaming mean/variance/min/max (Welford).
class OnlineStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

  /// Merges another accumulator (parallel reduction friendly).
  void merge(const OnlineStats& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-width-bin histogram over [lo, hi); out-of-range samples clamp to
/// the boundary bins so no mass is silently dropped.
class Histogram {
 public:
  /// \pre bins >= 1, lo < hi
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x, std::uint64_t weight = 1) noexcept;

  [[nodiscard]] std::size_t bin_count() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t count(std::size_t bin) const;
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  /// Inclusive lower edge of `bin`.
  [[nodiscard]] double bin_lo(std::size_t bin) const;
  /// Exclusive upper edge of `bin`.
  [[nodiscard]] double bin_hi(std::size_t bin) const;
  /// Fraction of all mass at or below the upper edge of `bin`.
  [[nodiscard]] double cumulative_fraction(std::size_t bin) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Exact percentile of a sample set (interpolated, type-7 / NumPy default).
/// Sorts a copy; intended for post-hoc analysis, not hot loops.
/// \pre !xs.empty(), 0 <= p <= 100
[[nodiscard]] double percentile(std::span<const double> xs, double p);

/// Gini coefficient of a non-negative sample set in [0, 1]:
/// 0 = perfectly even, ->1 = one element holds everything.
/// Returns 0 for empty input or all-zero input.
[[nodiscard]] double gini(std::span<const double> xs);

}  // namespace meteo
