#pragma once

/// \file cli.hpp
/// Tiny command-line flag parser shared by bench and example binaries.
///
/// Supported syntax: `--name=value`, `--name value`, and boolean
/// `--name` / `--no-name`. Unknown flags are an error (fail fast rather
/// than silently running the wrong experiment).

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace meteo {

class CliParser {
 public:
  /// Declares a flag with a default value and a help string.
  void add_flag(std::string name, std::string default_value, std::string help);
  void add_bool(std::string name, bool default_value, std::string help);

  /// Parses argv. Returns false (after printing usage to stderr) on
  /// unknown flags, missing values, or `--help`.
  [[nodiscard]] bool parse(int argc, const char* const* argv);

  [[nodiscard]] std::string get(const std::string& name) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] bool get_bool(const std::string& name) const;

  /// Positional (non-flag) arguments in order.
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  void print_usage(const std::string& program) const;

 private:
  struct Flag {
    std::string value;
    std::string default_value;
    std::string help;
    bool is_bool = false;
  };
  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace meteo
