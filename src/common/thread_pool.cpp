#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>

#include "common/assert.hpp"

namespace meteo {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  METEO_EXPECTS(task != nullptr);
  {
    const std::lock_guard lock(mutex_);
    METEO_EXPECTS(!stopping_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for_chunked(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body) {
  METEO_EXPECTS(begin <= end);
  if (begin == end) return;
  const std::size_t total = end - begin;
  // Over-decompose by 4x for load balance on uneven chunks.
  const std::size_t chunks =
      std::min(total, std::max<std::size_t>(1, thread_count() * 4));
  const std::size_t chunk_size = (total + chunks - 1) / chunks;

  const std::size_t launched = (total + chunk_size - 1) / chunk_size;
  std::atomic<std::size_t> remaining{launched};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::mutex done_mutex;
  std::condition_variable done_cv;

  for (std::size_t lo = begin; lo < end; lo += chunk_size) {
    const std::size_t hi = std::min(lo + chunk_size, end);
    submit([&, lo, hi] {
      try {
        body(lo, hi);
      } catch (...) {
        const std::lock_guard lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
      if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        const std::lock_guard lock(done_mutex);
        done_cv.notify_one();
      }
    });
  }

  std::unique_lock lock(done_mutex);
  done_cv.wait(lock, [&] { return remaining.load(std::memory_order_acquire) == 0; });
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body) {
  parallel_for_chunked(begin, end, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) body(i);
  });
}

}  // namespace meteo
