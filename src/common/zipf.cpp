#include "common/zipf.hpp"

#include <cmath>
#include <numeric>

#include "common/assert.hpp"

namespace meteo {

// ---------------------------------------------------------------------------
// ZipfSampler — rejection-inversion after Hörmann & Derflinger (1996).
// Sampling works on the continuous envelope h(x) = (x)^-s over
// [0.5, n + 0.5] (ranks are 1-based internally), inverting the exact
// integral H and rejecting against the true discrete mass.
// ---------------------------------------------------------------------------

ZipfSampler::ZipfSampler(std::size_t n, double s) : n_(n), s_(s) {
  METEO_EXPECTS(n >= 1);
  METEO_EXPECTS(s > 0.0);
  h_x1_ = h_integral(1.5) - 1.0;
  h_n_ = h_integral(static_cast<double>(n) + 0.5);
  for (std::size_t k = 1; k <= n_; ++k) {
    normalizer_ += std::pow(static_cast<double>(k), -s_);
  }
}

double ZipfSampler::h(double x) const noexcept { return std::pow(x, -s_); }

double ZipfSampler::h_integral(double x) const noexcept {
  const double log_x = std::log(x);
  // Integral of t^-s dt: handles s == 1 via the expm1/log1p stable form.
  const double t = (1.0 - s_) * log_x;
  if (std::abs(t) < 1e-8) {
    return log_x * (1.0 + t / 2.0 + t * t / 6.0);
  }
  return std::expm1(t) / (1.0 - s_);
}

double ZipfSampler::h_integral_inverse(double x) const noexcept {
  double t = x * (1.0 - s_);
  if (t < -1.0) t = -1.0;  // numeric guard near the lower boundary
  if (std::abs(t) < 1e-8) {
    return std::exp(x * (1.0 - t / 2.0 + t * t / 3.0));
  }
  return std::exp(std::log1p(t) / (1.0 - s_));
}

std::size_t ZipfSampler::operator()(Rng& rng) const noexcept {
  while (true) {
    const double u = h_n_ + rng.uniform() * (h_x1_ - h_n_);
    const double x = h_integral_inverse(u);
    double k = std::floor(x + 0.5);
    if (k < 1.0) k = 1.0;
    if (k > static_cast<double>(n_)) k = static_cast<double>(n_);
    // Accept if u lies under the discrete mass at k.
    if (u >= h_integral(k + 0.5) - h(k)) {
      return static_cast<std::size_t>(k) - 1;
    }
  }
}

double ZipfSampler::pmf(std::size_t k) const noexcept {
  METEO_EXPECTS(k < n_);
  return std::pow(static_cast<double>(k + 1), -s_) / normalizer_;
}

// ---------------------------------------------------------------------------
// AliasTable — Vose's stable construction.
// ---------------------------------------------------------------------------

AliasTable::AliasTable(std::span<const double> weights) {
  METEO_EXPECTS(!weights.empty());
  const std::size_t n = weights.size();
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  METEO_EXPECTS(total > 0.0);

  normalized_.resize(n);
  prob_.assign(n, 0.0);
  alias_.assign(n, 0);

  std::vector<double> scaled(n);
  std::vector<std::uint32_t> small;
  std::vector<std::uint32_t> large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    METEO_EXPECTS(weights[i] >= 0.0);
    normalized_[i] = weights[i] / total;
    scaled[i] = normalized_[i] * static_cast<double>(n);
    if (scaled[i] < 1.0) {
      small.push_back(static_cast<std::uint32_t>(i));
    } else {
      large.push_back(static_cast<std::uint32_t>(i));
    }
  }

  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      small.push_back(l);
    } else {
      large.push_back(l);
    }
  }
  for (const std::uint32_t i : large) prob_[i] = 1.0;
  for (const std::uint32_t i : small) prob_[i] = 1.0;  // numeric leftovers
}

std::size_t AliasTable::operator()(Rng& rng) const noexcept {
  const std::size_t column = rng.below(prob_.size());
  return rng.uniform() < prob_[column] ? column : alias_[column];
}

double AliasTable::probability(std::size_t i) const noexcept {
  METEO_EXPECTS(i < normalized_.size());
  return normalized_[i];
}

}  // namespace meteo
