#include "common/rng.hpp"

#include <cmath>

namespace meteo {

std::uint64_t Rng::below(std::uint64_t n) noexcept {
  METEO_EXPECTS(n > 0);
  // Lemire (2019): multiply a 64-bit draw by n and keep the high word,
  // rejecting the small biased band at the bottom of each residue class.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::normal() noexcept {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  has_spare_normal_ = true;
  return u * factor;
}

double Rng::lognormal(double mu, double sigma) noexcept {
  return std::exp(normal(mu, sigma));
}

double Rng::exponential(double lambda) noexcept {
  METEO_EXPECTS(lambda > 0.0);
  // uniform() is in [0,1); 1-u is in (0,1] so the log is finite.
  return -std::log(1.0 - uniform()) / lambda;
}

}  // namespace meteo
