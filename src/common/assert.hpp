#pragma once

/// \file assert.hpp
/// Contract-checking macros used across the library.
///
/// Following the C++ Core Guidelines (I.6/I.8), preconditions and
/// postconditions are stated explicitly at API boundaries. Violations are
/// programming errors, so they terminate via std::abort after printing a
/// diagnostic; they are *not* recoverable error conditions (those use
/// meteo::Result).

#include <cstdio>
#include <cstdlib>

namespace meteo::detail {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) noexcept {
  std::fprintf(stderr, "meteo: %s violated: (%s) at %s:%d\n", kind, expr, file,
               line);
  std::abort();
}

}  // namespace meteo::detail

/// Precondition check: argument/state requirements of a function.
#define METEO_EXPECTS(cond)                                               \
  ((cond) ? static_cast<void>(0)                                          \
          : ::meteo::detail::contract_failure("precondition", #cond,      \
                                              __FILE__, __LINE__))

/// Postcondition check: guarantees a function makes on exit.
#define METEO_ENSURES(cond)                                               \
  ((cond) ? static_cast<void>(0)                                          \
          : ::meteo::detail::contract_failure("postcondition", #cond,     \
                                              __FILE__, __LINE__))

/// Internal invariant check.
#define METEO_ASSERT(cond)                                                \
  ((cond) ? static_cast<void>(0)                                          \
          : ::meteo::detail::contract_failure("invariant", #cond,         \
                                              __FILE__, __LINE__))
