#pragma once

/// \file rng.hpp
/// Deterministic pseudo-random number generation.
///
/// Every stochastic component of the simulator draws from meteo::Rng so a
/// run is fully reproducible from a single 64-bit seed. The generator is
/// xoshiro256** (Blackman & Vigna) seeded via splitmix64, which is both
/// faster and statistically stronger than std::mt19937_64 while remaining
/// header-portable.

#include <array>
#include <cstdint>
#include <limits>

#include "common/assert.hpp"

namespace meteo {

/// splitmix64 step: used for seeding and for cheap stateless hashing.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// xoshiro256** PRNG with a std::uniform_random_bit_generator interface.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words by iterating splitmix64 over `seed`.
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL) noexcept {
    std::uint64_t s = seed;
    for (auto& word : state_) {
      s = splitmix64(s);
      word = s;
    }
    // xoshiro must not start in the all-zero state.
    if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53-bit resolution.
  [[nodiscard]] double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi). \pre lo < hi
  [[nodiscard]] double uniform(double lo, double hi) noexcept {
    METEO_EXPECTS(lo < hi);
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). Uses Lemire's multiply-shift rejection
  /// method to avoid modulo bias. \pre n > 0
  [[nodiscard]] std::uint64_t below(std::uint64_t n) noexcept;

  /// Uniform integer in [lo, hi] inclusive. \pre lo <= hi
  [[nodiscard]] std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    METEO_EXPECTS(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli trial with success probability `p` (clamped to [0,1]).
  [[nodiscard]] bool chance(double p) noexcept { return uniform() < p; }

  /// Standard normal via Marsaglia polar method (cached spare deviate).
  [[nodiscard]] double normal() noexcept;

  /// Normal with the given mean and standard deviation.
  [[nodiscard]] double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Log-normal: exp(N(mu, sigma)).
  [[nodiscard]] double lognormal(double mu, double sigma) noexcept;

  /// Exponential with rate `lambda`. \pre lambda > 0
  [[nodiscard]] double exponential(double lambda) noexcept;

  /// Splits off an independent child generator (for parallel streams).
  [[nodiscard]] Rng split() noexcept { return Rng((*this)()); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double spare_normal_ = 0.0;
  bool has_spare_normal_ = false;
};

}  // namespace meteo
