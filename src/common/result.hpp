#pragma once

/// \file result.hpp
/// A minimal `Result<T, E>` sum type for recoverable errors.
///
/// C++20 has no std::expected; this is a deliberately small subset of its
/// interface (value/error observers, map, value_or) sufficient for the
/// library. Errors in this codebase are small enum/struct types, so both
/// alternatives are stored by value.

#include <utility>
#include <variant>

#include "common/assert.hpp"

namespace meteo {

/// Tag type used to construct a Result in the error state.
template <typename E>
struct Err {
  E error;
};

template <typename E>
Err(E) -> Err<E>;

/// Discriminated union of a success value `T` and an error `E`.
///
/// A Result is truthy when it holds a value. Accessing the wrong
/// alternative is a precondition violation (aborts), mirroring
/// std::expected's undefined behaviour but fail-fast.
template <typename T, typename E>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a success value.
  Result(T value) : storage_(std::in_place_index<0>, std::move(value)) {}

  /// Implicit construction from an `Err<E>` wrapper.
  Result(Err<E> err) : storage_(std::in_place_index<1>, std::move(err.error)) {}

  [[nodiscard]] bool has_value() const noexcept {
    return storage_.index() == 0;
  }
  explicit operator bool() const noexcept { return has_value(); }

  /// \pre has_value()
  [[nodiscard]] const T& value() const& {
    METEO_EXPECTS(has_value());
    return std::get<0>(storage_);
  }
  /// \pre has_value()
  [[nodiscard]] T& value() & {
    METEO_EXPECTS(has_value());
    return std::get<0>(storage_);
  }
  /// \pre has_value()
  [[nodiscard]] T&& value() && {
    METEO_EXPECTS(has_value());
    return std::get<0>(std::move(storage_));
  }

  /// \pre !has_value()
  [[nodiscard]] const E& error() const& {
    METEO_EXPECTS(!has_value());
    return std::get<1>(storage_);
  }

  /// Returns the contained value or `fallback` when in the error state.
  [[nodiscard]] T value_or(T fallback) const& {
    return has_value() ? std::get<0>(storage_) : std::move(fallback);
  }

  /// Applies `f` to the value, propagating the error unchanged.
  template <typename F>
  [[nodiscard]] auto map(F&& f) const& -> Result<decltype(f(std::declval<const T&>())), E> {
    using U = decltype(f(std::declval<const T&>()));
    if (has_value()) return Result<U, E>(f(std::get<0>(storage_)));
    return Result<U, E>(Err<E>{std::get<1>(storage_)});
  }

 private:
  std::variant<T, E> storage_;
};

}  // namespace meteo
