#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "common/assert.hpp"

namespace meteo {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  METEO_EXPECTS(!header_.empty());
}

void TextTable::add_row(std::vector<std::string> row) {
  METEO_EXPECTS(row.size() <= header_.size());
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
  return buf;
}

std::string TextTable::integer(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", v);
  return buf;
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) {
        os << std::string(widths[c] - row[c].size() + 2, ' ');
      }
    }
    os << '\n';
  };
  emit_row(header_);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  os << std::string(rule, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
}

namespace {
void emit_csv_cell(std::ostream& os, const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) {
    os << cell;
    return;
  }
  os << '"';
  for (const char ch : cell) {
    if (ch == '"') os << '"';
    os << ch;
  }
  os << '"';
}
}  // namespace

void TextTable::print_csv(std::ostream& os) const {
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      emit_csv_cell(os, row[c]);
    }
    os << '\n';
  };
  emit_row(header_);
  for (const auto& row : rows_) emit_row(row);
}

}  // namespace meteo
