#include "common/cdf.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace meteo {

PiecewiseLinearMap::PiecewiseLinearMap(std::vector<Knot> knots)
    : knots_(std::move(knots)) {
  METEO_EXPECTS(knots_.size() >= 2);
  for (std::size_t i = 1; i < knots_.size(); ++i) {
    METEO_EXPECTS(knots_[i].x > knots_[i - 1].x);
    METEO_EXPECTS(knots_[i].y >= knots_[i - 1].y);
  }
}

double PiecewiseLinearMap::operator()(double x) const noexcept {
  if (x <= knots_.front().x) return knots_.front().y;
  if (x >= knots_.back().x) return knots_.back().y;
  // Find the segment [k[i-1], k[i]] containing x.
  const auto it = std::upper_bound(
      knots_.begin(), knots_.end(), x,
      [](double value, const Knot& k) { return value < k.x; });
  const Knot& hi = *it;
  const Knot& lo = *(it - 1);
  const double t = (x - lo.x) / (hi.x - lo.x);
  return lo.y + t * (hi.y - lo.y);
}

PiecewiseLinearMap PiecewiseLinearMap::inverse() const {
  std::vector<Knot> inv;
  inv.reserve(knots_.size());
  for (const Knot& k : knots_) {
    // Flat y-segments would produce duplicate x values in the inverse;
    // keep only the first (left edge) to stay strictly increasing.
    if (!inv.empty() && k.y <= inv.back().x) continue;
    inv.push_back(Knot{k.y, k.x});
  }
  METEO_ENSURES(inv.size() >= 2);
  return PiecewiseLinearMap(std::move(inv));
}

EmpiricalCdf::EmpiricalCdf(std::span<const double> samples)
    : sorted_(samples.begin(), samples.end()) {
  METEO_EXPECTS(!samples.empty());
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::fraction_at(double x) const noexcept {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double EmpiricalCdf::quantile(double q) const {
  METEO_EXPECTS(q >= 0.0 && q <= 1.0);
  if (q <= 0.0) return sorted_.front();
  const auto n = static_cast<double>(sorted_.size());
  auto idx = static_cast<std::size_t>(std::ceil(q * n)) - 1;
  if (idx >= sorted_.size()) idx = sorted_.size() - 1;
  return sorted_[idx];
}

std::vector<Knot> EmpiricalCdf::resample(std::size_t points) const {
  METEO_EXPECTS(points >= 2);
  std::vector<Knot> out;
  out.reserve(points);
  const double lo = sorted_.front();
  const double hi = sorted_.back();
  if (lo == hi) {
    // Degenerate single-valued distribution: a two-knot step.
    out.push_back(Knot{lo, 0.0});
    out.push_back(Knot{lo + 1.0, 1.0});
    return out;
  }
  for (std::size_t i = 0; i < points; ++i) {
    const double x =
        lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(points - 1);
    out.push_back(Knot{x, fraction_at(x)});
  }
  return out;
}

}  // namespace meteo
