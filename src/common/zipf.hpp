#pragma once

/// \file zipf.hpp
/// Discrete heavy-tailed samplers.
///
/// Two samplers are provided:
///  - ZipfSampler: rank-frequency Zipf(s, n) using rejection-inversion
///    (Hörmann & Derflinger 1996), O(1) per draw, no O(n) tables.
///  - AliasTable: Walker/Vose alias method for arbitrary discrete
///    distributions, O(n) build, O(1) per draw.
///
/// The workload synthesizer uses Zipf for keyword popularity (web object
/// accesses are classically Zipf-like) and alias tables when sampling from
/// an empirically measured distribution.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"

namespace meteo {

/// Zipf(s, n): P(k) proportional to 1/(k+1)^s for k in [0, n).
///
/// Uses rejection-inversion so construction is O(1) and sampling is O(1)
/// expected, independent of n — essential when n is the 89K-keyword
/// dictionary and millions of draws are needed.
class ZipfSampler {
 public:
  /// \pre n >= 1, s > 0
  ZipfSampler(std::size_t n, double s);

  /// Draws a rank in [0, n), rank 0 being the most popular.
  [[nodiscard]] std::size_t operator()(Rng& rng) const noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  [[nodiscard]] double exponent() const noexcept { return s_; }

  /// Probability mass of rank k (for tests and analytic comparisons).
  [[nodiscard]] double pmf(std::size_t k) const noexcept;

 private:
  [[nodiscard]] double h(double x) const noexcept;          // integrand
  [[nodiscard]] double h_integral(double x) const noexcept; // antiderivative
  [[nodiscard]] double h_integral_inverse(double x) const noexcept;

  std::size_t n_;
  double s_;
  double h_x1_;               // H(1.5) - h(1)
  double h_n_;                // H(n + 0.5)
  double normalizer_ = 0.0;   // generalized harmonic number H_{n,s}
};

/// Walker/Vose alias table over an arbitrary non-negative weight vector.
class AliasTable {
 public:
  /// \pre !weights.empty(), all weights >= 0, sum(weights) > 0
  explicit AliasTable(std::span<const double> weights);

  /// Draws an index in [0, size()) with probability proportional to its
  /// weight.
  [[nodiscard]] std::size_t operator()(Rng& rng) const noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return prob_.size(); }

  /// Normalized probability of index i (for tests).
  [[nodiscard]] double probability(std::size_t i) const noexcept;

 private:
  std::vector<double> prob_;
  std::vector<std::uint32_t> alias_;
  std::vector<double> normalized_;
};

}  // namespace meteo
