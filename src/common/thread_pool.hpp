#pragma once

/// \file thread_pool.hpp
/// A small fixed-size thread pool with a blocking parallel_for.
///
/// Simulations in this repo are mostly sequential state machines, but the
/// embarrassingly parallel phases (publishing millions of items, running
/// 100K independent queries, Monte-Carlo failure trials) scale linearly
/// with cores. parallel_for splits an index range into contiguous chunks,
/// one task per chunk, and blocks until all complete. Exceptions thrown by
/// workers are captured and rethrown on the calling thread (first one wins).

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace meteo {

class ThreadPool {
 public:
  /// \param threads worker count; 0 means std::thread::hardware_concurrency()
  explicit ThreadPool(std::size_t threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains outstanding work, then joins all workers.
  ~ThreadPool();

  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size();
  }

  /// Enqueues a task for asynchronous execution.
  void submit(std::function<void()> task);

  /// Runs `body(i)` for every i in [begin, end), partitioned into
  /// contiguous chunks across the pool, and blocks until done.
  /// `body` must be safe to invoke concurrently for distinct i.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body);

  /// Chunked variant: runs `body(lo, hi)` on disjoint subranges. Preferred
  /// when per-index dispatch overhead matters.
  void parallel_for_chunked(
      std::size_t begin, std::size_t end,
      const std::function<void(std::size_t, std::size_t)>& body);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace meteo
