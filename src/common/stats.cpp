#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace meteo {

void OnlineStats::add(double x) noexcept {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  if (n_ == 1) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
}

double OnlineStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

void OnlineStats::merge(const OnlineStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  METEO_EXPECTS(bins >= 1);
  METEO_EXPECTS(lo < hi);
}

void Histogram::add(double x, std::uint64_t weight) noexcept {
  std::size_t bin = 0;
  if (x >= hi_) {
    bin = counts_.size() - 1;
  } else if (x > lo_) {
    bin = static_cast<std::size_t>((x - lo_) / width_);
    if (bin >= counts_.size()) bin = counts_.size() - 1;
  }
  counts_[bin] += weight;
  total_ += weight;
}

std::uint64_t Histogram::count(std::size_t bin) const {
  METEO_EXPECTS(bin < counts_.size());
  return counts_[bin];
}

double Histogram::bin_lo(std::size_t bin) const {
  METEO_EXPECTS(bin < counts_.size());
  return lo_ + width_ * static_cast<double>(bin);
}

double Histogram::bin_hi(std::size_t bin) const {
  METEO_EXPECTS(bin < counts_.size());
  return lo_ + width_ * static_cast<double>(bin + 1);
}

double Histogram::cumulative_fraction(std::size_t bin) const {
  METEO_EXPECTS(bin < counts_.size());
  if (total_ == 0) return 0.0;
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i <= bin; ++i) acc += counts_[i];
  return static_cast<double>(acc) / static_cast<double>(total_);
}

double percentile(std::span<const double> xs, double p) {
  METEO_EXPECTS(!xs.empty());
  METEO_EXPECTS(p >= 0.0 && p <= 100.0);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double gini(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double total = std::accumulate(sorted.begin(), sorted.end(), 0.0);
  if (total <= 0.0) return 0.0;
  const auto n = static_cast<double>(sorted.size());
  double weighted = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    weighted += static_cast<double>(i + 1) * sorted[i];
  }
  return (2.0 * weighted) / (n * total) - (n + 1.0) / n;
}

}  // namespace meteo
