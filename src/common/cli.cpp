#include "common/cli.hpp"

#include <cstdio>
#include <cstdlib>

#include "common/assert.hpp"

namespace meteo {

void CliParser::add_flag(std::string name, std::string default_value,
                         std::string help) {
  Flag flag;
  flag.value = default_value;
  flag.default_value = std::move(default_value);
  flag.help = std::move(help);
  flags_.emplace(std::move(name), std::move(flag));
}

void CliParser::add_bool(std::string name, bool default_value,
                         std::string help) {
  Flag flag;
  flag.value = default_value ? "1" : "0";
  flag.default_value = flag.value;
  flag.help = std::move(help);
  flag.is_bool = true;
  flags_.emplace(std::move(name), std::move(flag));
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage(argv[0]);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::optional<std::string> value;
    if (const auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
    }
    bool negated = false;
    if (!flags_.contains(name) && name.rfind("no-", 0) == 0) {
      const std::string positive = name.substr(3);
      if (flags_.contains(positive) && flags_.at(positive).is_bool) {
        name = positive;
        negated = true;
      }
    }
    const auto it = flags_.find(name);
    if (it == flags_.end()) {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      print_usage(argv[0]);
      return false;
    }
    Flag& flag = it->second;
    if (flag.is_bool) {
      flag.value = negated ? "0" : (value.value_or("1") == "0" ? "0" : "1");
      continue;
    }
    if (!value) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "flag --%s requires a value\n", name.c_str());
        return false;
      }
      value = argv[++i];
    }
    flag.value = *value;
  }
  return true;
}

std::string CliParser::get(const std::string& name) const {
  const auto it = flags_.find(name);
  METEO_EXPECTS(it != flags_.end());
  return it->second.value;
}

std::int64_t CliParser::get_int(const std::string& name) const {
  return std::strtoll(get(name).c_str(), nullptr, 10);
}

double CliParser::get_double(const std::string& name) const {
  return std::strtod(get(name).c_str(), nullptr);
}

bool CliParser::get_bool(const std::string& name) const {
  return get(name) == "1";
}

void CliParser::print_usage(const std::string& program) const {
  std::fprintf(stderr, "usage: %s [flags]\n", program.c_str());
  for (const auto& [name, flag] : flags_) {
    std::fprintf(stderr, "  --%-24s %s (default: %s)\n", name.c_str(),
                 flag.help.c_str(), flag.default_value.c_str());
  }
}

}  // namespace meteo
