#pragma once

/// \file table.hpp
/// Aligned text-table / CSV emitter used by every bench binary so the
/// reproduced tables and figure series all share one output format.

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace meteo {

/// Collects rows of string cells and renders them either as an aligned
/// monospace table (default, for terminals) or as CSV (for plotting).
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends a row. Rows shorter than the header are padded with "".
  void add_row(std::vector<std::string> row);

  /// Convenience: formats arithmetic cells with %g-style precision.
  static std::string num(double v, int precision = 6);
  static std::string integer(long long v);

  /// Renders aligned columns, with a rule under the header.
  void print(std::ostream& os) const;

  /// Renders RFC-4180-ish CSV (cells containing commas/quotes are quoted).
  void print_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace meteo
