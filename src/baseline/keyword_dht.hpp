#pragma once

/// \file keyword_dht.hpp
/// The naive "one inverted list per keyword" structured baseline the
/// paper's introduction argues against.
///
/// Each keyword hashes (uniformly) to a key; the node closest to that key
/// stores the keyword's full posting list. Publishing an item with b
/// keywords costs b routed messages; a multi-keyword query routes to every
/// keyword's node, transfers the *entire* posting lists back, and
/// intersects at the requester. The two §1 pathologies fall out directly:
///  - a popular keyword's node stores (and ships) a posting per matching
///    item — hotspot load and large traffic for items that do not match
///    the full conjunction;
///  - queries cost sum-of-posting-lengths messages, not O(result size).

#include <cstddef>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "overlay/overlay.hpp"
#include "vsm/types.hpp"

namespace meteo::baseline {

struct KeywordDhtConfig {
  overlay::OverlayConfig overlay;
  std::size_t node_count = 1000;
};

struct DhtPublishResult {
  std::size_t messages = 0;  ///< routed hops over all keyword postings
};

struct DhtQueryResult {
  std::vector<vsm::ItemId> items;          ///< the conjunction result
  std::size_t route_messages = 0;          ///< reaching the keyword nodes
  std::size_t transfer_messages = 0;       ///< one per posting shipped back
  std::size_t postings_examined = 0;
  [[nodiscard]] std::size_t total_messages() const noexcept {
    return route_messages + transfer_messages;
  }
};

class KeywordDht {
 public:
  KeywordDht(const KeywordDhtConfig& config, std::uint64_t seed);

  /// Stores item -> posting on every keyword's responsible node.
  DhtPublishResult publish(vsm::ItemId id,
                           std::span<const vsm::KeywordId> keywords);

  /// Conjunctive query: fetch all posting lists, intersect locally.
  [[nodiscard]] DhtQueryResult search(
      std::span<const vsm::KeywordId> keywords);

  /// Postings stored per alive node (the §1 hotspot measurement).
  [[nodiscard]] std::vector<std::size_t> node_loads() const;

  [[nodiscard]] const overlay::Overlay& network() const noexcept {
    return overlay_;
  }

  /// The key a keyword hashes to (uniform over the space).
  [[nodiscard]] overlay::Key keyword_key(vsm::KeywordId keyword) const;

 private:
  overlay::Overlay overlay_;
  Rng rng_;
  /// node -> keyword -> posting list (ascending item ids).
  std::vector<std::unordered_map<vsm::KeywordId, std::vector<vsm::ItemId>>>
      postings_;
};

}  // namespace meteo::baseline
