#include "baseline/keyword_dht.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace meteo::baseline {

KeywordDht::KeywordDht(const KeywordDhtConfig& config, std::uint64_t seed)
    : overlay_(config.overlay), rng_(seed) {
  METEO_EXPECTS(config.node_count >= 1);
  while (overlay_.alive_count() < config.node_count) {
    (void)overlay_.join(rng_.below(config.overlay.key_space));
  }
  overlay_.repair();
  postings_.resize(overlay_.size());
}

overlay::Key KeywordDht::keyword_key(vsm::KeywordId keyword) const {
  return splitmix64(keyword) % overlay_.config().key_space;
}

DhtPublishResult KeywordDht::publish(
    vsm::ItemId id, std::span<const vsm::KeywordId> keywords) {
  DhtPublishResult result;
  const overlay::NodeId source = overlay_.random_alive(rng_);
  for (const vsm::KeywordId keyword : keywords) {
    const overlay::RouteResult route =
        overlay_.route(source, keyword_key(keyword));
    result.messages += route.hops;
    auto& list = postings_[route.destination][keyword];
    // Keep ascending for O(n) intersection; publishes arrive in any order.
    const auto it = std::lower_bound(list.begin(), list.end(), id);
    if (it == list.end() || *it != id) list.insert(it, id);
  }
  return result;
}

DhtQueryResult KeywordDht::search(std::span<const vsm::KeywordId> keywords) {
  DhtQueryResult result;
  if (keywords.empty()) return result;

  const overlay::NodeId source = overlay_.random_alive(rng_);
  std::vector<std::vector<vsm::ItemId>> lists;
  lists.reserve(keywords.size());
  for (const vsm::KeywordId keyword : keywords) {
    const overlay::RouteResult route =
        overlay_.route(source, keyword_key(keyword));
    result.route_messages += route.hops;
    const auto& node_postings = postings_[route.destination];
    const auto it = node_postings.find(keyword);
    std::vector<vsm::ItemId> list =
        it == node_postings.end() ? std::vector<vsm::ItemId>{} : it->second;
    // Every posting travels back to the requester: the §1 traffic cost for
    // items that may not match the full conjunction.
    result.transfer_messages += list.size();
    result.postings_examined += list.size();
    lists.push_back(std::move(list));
  }

  // Intersect smallest-first.
  std::sort(lists.begin(), lists.end(),
            [](const auto& a, const auto& b) { return a.size() < b.size(); });
  std::vector<vsm::ItemId> acc = std::move(lists.front());
  for (std::size_t i = 1; i < lists.size() && !acc.empty(); ++i) {
    std::vector<vsm::ItemId> merged;
    std::set_intersection(acc.begin(), acc.end(), lists[i].begin(),
                          lists[i].end(), std::back_inserter(merged));
    acc = std::move(merged);
  }
  result.items = std::move(acc);
  return result;
}

std::vector<std::size_t> KeywordDht::node_loads() const {
  std::vector<std::size_t> loads;
  for (const overlay::NodeId id : overlay_.alive_nodes()) {
    std::size_t load = 0;
    // meteo-lint: order-insensitive(integer sum of posting sizes commutes)
    for (const auto& [keyword, list] : postings_[id]) {
      load += list.size();
    }
    loads.push_back(load);
  }
  return loads;
}

}  // namespace meteo::baseline
