#pragma once

/// \file can.hpp
/// A Content-Addressable Network (CAN) simulator — the substrate pSearch
/// runs on (paper §5).
///
/// CAN partitions a d-dimensional unit torus into axis-aligned zones, one
/// per node. A joining node picks a random point; the zone owning it
/// splits in half (cycling the split dimension) and the joiner takes one
/// half. Nodes keep pointers to all zones adjacent across a
/// (d-1)-dimensional face, and greedy routing forwards to the neighbor
/// whose zone is closest (torus metric) to the target point —
/// O(d * N^(1/d)) hops, the scaling the paper contrasts with the
/// single-dimensional O(log N) overlays.
///
/// The expanding-ring primitive (BFS over the neighbor graph) is what
/// pSearch uses to gather results around the query point, and is exactly
/// the "localized flooding mechanism" §5 criticizes.

#include <cstddef>
#include <span>
#include <vector>

#include "common/rng.hpp"

namespace meteo::baseline {

/// A point in the d-dimensional unit torus.
using CanPoint = std::vector<double>;

struct CanZone {
  std::vector<double> lo;  ///< inclusive
  std::vector<double> hi;  ///< exclusive

  [[nodiscard]] bool contains(const CanPoint& p) const;
  /// Torus-aware minimum distance from the zone box to a point.
  [[nodiscard]] double distance_to(const CanPoint& p) const;
  /// Volume of the zone (for partition invariants).
  [[nodiscard]] double volume() const;
};

struct CanRouteResult {
  std::size_t owner = 0;
  std::size_t hops = 0;
};

class CanNetwork {
 public:
  /// Builds a CAN of `nodes` zones in `dimensions` dimensions by random
  /// sequential joins. \pre dimensions >= 1, nodes >= 1
  CanNetwork(std::size_t nodes, std::size_t dimensions, Rng& rng);

  [[nodiscard]] std::size_t node_count() const noexcept {
    return zones_.size();
  }
  [[nodiscard]] std::size_t dimensions() const noexcept { return dims_; }

  [[nodiscard]] const CanZone& zone_of(std::size_t node) const;
  [[nodiscard]] std::span<const std::size_t> neighbors(std::size_t node) const;

  /// The node whose zone contains `p` (oracle, O(N)).
  [[nodiscard]] std::size_t owner_of(const CanPoint& p) const;

  /// Greedy routing from `from` toward the owner of `p`.
  [[nodiscard]] CanRouteResult route(std::size_t from, const CanPoint& p) const;

  /// All nodes within `radius` neighbor-hops of `center` (BFS). The
  /// returned list is in BFS order and includes `center`; `messages` gets
  /// the number of edge transmissions the flood cost.
  [[nodiscard]] std::vector<std::size_t> expanding_ring(
      std::size_t center, std::size_t radius, std::size_t* messages) const;

  /// Uniform random point in the torus.
  [[nodiscard]] static CanPoint random_point(std::size_t dims, Rng& rng);

 private:
  void split(std::size_t owner, const CanPoint& joiner_point);
  void rebuild_neighbors();
  [[nodiscard]] static bool adjacent(const CanZone& a, const CanZone& b,
                                     std::size_t dims);

  std::size_t dims_;
  std::vector<CanZone> zones_;
  std::vector<std::size_t> next_split_dim_;  // per-zone split cycle
  std::vector<std::vector<std::size_t>> neighbors_;
};

}  // namespace meteo::baseline
