#include "baseline/flooding.hpp"

#include <algorithm>
#include <deque>

#include "common/assert.hpp"

namespace meteo::baseline {

FloodingNetwork::FloodingNetwork(const FloodingConfig& config, Rng& rng)
    : adjacency_(config.node_count), stored_(config.node_count) {
  METEO_EXPECTS(config.node_count >= 2);
  METEO_EXPECTS(config.degree >= 1);
  for (std::size_t u = 0; u < config.node_count; ++u) {
    for (std::size_t e = 0; e < config.degree; ++e) {
      std::size_t v = rng.below(config.node_count);
      while (v == u) v = rng.below(config.node_count);
      adjacency_[u].push_back(v);
      adjacency_[v].push_back(u);
    }
  }
  // Deduplicate parallel edges.
  for (auto& neighbors : adjacency_) {
    std::sort(neighbors.begin(), neighbors.end());
    neighbors.erase(std::unique(neighbors.begin(), neighbors.end()),
                    neighbors.end());
  }
}

void FloodingNetwork::place_item(vsm::ItemId id,
                                 std::vector<vsm::KeywordId> keywords,
                                 std::size_t node) {
  METEO_EXPECTS(node < stored_.size());
  std::sort(keywords.begin(), keywords.end());
  stored_[node].push_back(Item{id, std::move(keywords)});
}

void FloodingNetwork::publish_random(vsm::ItemId id,
                                     std::vector<vsm::KeywordId> keywords,
                                     Rng& rng) {
  place_item(id, std::move(keywords), rng.below(stored_.size()));
}

bool FloodingNetwork::matches(const Item& item,
                              std::span<const vsm::KeywordId> keywords) {
  return std::all_of(keywords.begin(), keywords.end(), [&](vsm::KeywordId k) {
    return std::binary_search(item.keywords.begin(), item.keywords.end(), k);
  });
}

FloodResult FloodingNetwork::search(std::span<const vsm::KeywordId> keywords,
                                    std::size_t ttl, std::size_t from) const {
  METEO_EXPECTS(from < adjacency_.size());
  FloodResult result;
  std::vector<bool> seen(adjacency_.size(), false);
  // BFS frontier carries (node, remaining ttl).
  std::deque<std::pair<std::size_t, std::size_t>> frontier;
  frontier.emplace_back(from, ttl);
  seen[from] = true;
  while (!frontier.empty()) {
    const auto [node, remaining] = frontier.front();
    frontier.pop_front();
    ++result.nodes_reached;
    for (const Item& item : stored_[node]) {
      if (matches(item, keywords)) result.items.push_back(item.id);
    }
    if (remaining == 0) continue;
    for (const std::size_t next : adjacency_[node]) {
      // Gnutella forwards to every neighbor (except where the query came
      // from); duplicates still cost a message even when dropped.
      ++result.messages;
      if (!seen[next]) {
        seen[next] = true;
        frontier.emplace_back(next, remaining - 1);
      }
    }
  }
  std::sort(result.items.begin(), result.items.end());
  return result;
}

std::size_t FloodingNetwork::total_matches(
    std::span<const vsm::KeywordId> keywords) const {
  std::size_t total = 0;
  for (const auto& items : stored_) {
    for (const Item& item : items) {
      if (matches(item, keywords)) ++total;
    }
  }
  return total;
}

std::span<const std::size_t> FloodingNetwork::neighbors(
    std::size_t node) const {
  METEO_EXPECTS(node < adjacency_.size());
  return adjacency_[node];
}

}  // namespace meteo::baseline
