#pragma once

/// \file psearch.hpp
/// pSearch-style semantic search over CAN (Tang, Xu & Mahalingam, HotNets
/// 2002) — the comparator §5 calls "the work most relevant to
/// Meteorograph".
///
/// Items are projected into a low-dimensional semantic space (the real
/// system uses LSI; this reproduction uses a seeded random projection —
/// the rolling-index idea — which preserves the properties the comparison
/// needs: similar vectors land at nearby points). The item is stored on
/// the CAN node owning its point. A query routes to its own point and runs
/// an *expanding ring search* around it, ranking everything found by
/// cosine.
///
/// The §5 criticisms are all measurable here:
///  - the ring search is a localized flood (messages grow with radius,
///    recall is radius-limited);
///  - CAN routing costs O(d * N^(1/d)) vs the linear overlays' O(log N);
///  - changing the semantic basis (new dimensions / retrained LSI)
///    invalidates every stored position: rebuild_basis() re-publishes the
///    whole corpus and returns what that costs.

#include <cstdint>
#include <vector>

#include "baseline/can.hpp"
#include "common/rng.hpp"
#include "vsm/local_index.hpp"
#include "vsm/sparse_vector.hpp"
#include "vsm/types.hpp"

namespace meteo::baseline {

struct PSearchConfig {
  std::size_t nodes = 1000;
  std::size_t dimensions = 4;  ///< CAN/semantic dimensionality
  std::uint64_t seed = 1;
};

struct PSearchPublishResult {
  std::size_t node = 0;
  std::size_t route_hops = 0;
};

struct PSearchQueryResult {
  std::vector<vsm::ScoredItem> items;  ///< cosine-ranked, descending
  std::size_t route_hops = 0;
  std::size_t flood_messages = 0;  ///< expanding-ring traffic
  std::size_t nodes_searched = 0;
};

class PSearch {
 public:
  explicit PSearch(const PSearchConfig& config);

  /// Projects a vector into the semantic space under the current basis.
  [[nodiscard]] CanPoint project(const vsm::SparseVector& v) const;

  PSearchPublishResult publish(vsm::ItemId id, vsm::SparseVector vector);

  /// Routes to the query's point and expands a ring of `ring_radius`
  /// hops, returning the top-k by true cosine among everything found.
  [[nodiscard]] PSearchQueryResult query(const vsm::SparseVector& query,
                                         std::size_t k,
                                         std::size_t ring_radius);

  /// Re-seeds the projection basis (the pSearch failure mode §5 points
  /// at: a changed semantic space invalidates every stored position) and
  /// re-publishes the entire corpus. Returns total re-publication
  /// messages.
  std::size_t rebuild_basis(std::uint64_t new_basis_seed);

  [[nodiscard]] std::size_t item_count() const noexcept {
    return corpus_.size();
  }
  [[nodiscard]] const CanNetwork& network() const noexcept { return can_; }

 private:
  /// Deterministic standard-normal hash of (keyword, dimension, basis).
  [[nodiscard]] double gaussian_weight(vsm::KeywordId keyword,
                                       std::size_t dim) const;

  PSearchConfig config_;
  std::uint64_t basis_seed_;
  Rng rng_;
  CanNetwork can_;
  std::vector<std::vector<vsm::StoredItem>> stored_;  // per CAN node
  std::vector<vsm::StoredItem> corpus_;               // master copy
};

}  // namespace meteo::baseline
