#pragma once

/// \file flooding.hpp
/// Gnutella-like unstructured overlay with TTL-bounded flooding search —
/// the comparator of the paper's introduction and footnote 1.
///
/// Nodes form a random graph (each node draws `degree` random neighbors;
/// edges are symmetric). Items live on the node that published them; a
/// search BFS-floods the query: every node forwards to all neighbors
/// except the one it heard the query from, until the TTL expires. Message
/// count is the number of edge transmissions — the quantity footnote 1
/// compares against Meteorograph's (1 + k/c)·O(log N).
///
/// The three problems §1/§5 call out are all observable here:
/// unpredictable message cost, TTL-limited scope (items beyond the horizon
/// are unfindable), and nondeterministic results across issuing nodes.

#include <cstddef>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "vsm/types.hpp"

namespace meteo::baseline {

struct FloodingConfig {
  std::size_t node_count = 1000;
  /// Outgoing edges drawn per node (degree ~ 2x after symmetrization).
  std::size_t degree = 4;
};

struct FloodResult {
  std::vector<vsm::ItemId> items;   ///< matches found within the horizon
  std::size_t messages = 0;         ///< edge transmissions
  std::size_t nodes_reached = 0;    ///< nodes that saw the query
};

class FloodingNetwork {
 public:
  FloodingNetwork(const FloodingConfig& config, Rng& rng);

  [[nodiscard]] std::size_t node_count() const noexcept {
    return adjacency_.size();
  }

  /// Stores an item (its sorted keyword set) on `node`; pass
  /// `node_count()` as a sentinel... prefer publish_random().
  void place_item(vsm::ItemId id, std::vector<vsm::KeywordId> keywords,
                  std::size_t node);

  /// Gnutella-style publish: the item stays on a random node.
  void publish_random(vsm::ItemId id, std::vector<vsm::KeywordId> keywords,
                      Rng& rng);

  /// TTL-bounded BFS flood from `from`, matching items containing all of
  /// `keywords`.
  [[nodiscard]] FloodResult search(std::span<const vsm::KeywordId> keywords,
                                   std::size_t ttl, std::size_t from) const;

  /// Total items an exhaustive (TTL = inf) search would match — ground
  /// truth for scope-miss measurements.
  [[nodiscard]] std::size_t total_matches(
      std::span<const vsm::KeywordId> keywords) const;

  [[nodiscard]] std::span<const std::size_t> neighbors(std::size_t node) const;

 private:
  struct Item {
    vsm::ItemId id;
    std::vector<vsm::KeywordId> keywords;  // sorted
  };

  static bool matches(const Item& item,
                      std::span<const vsm::KeywordId> keywords);

  std::vector<std::vector<std::size_t>> adjacency_;
  std::vector<std::vector<Item>> stored_;
};

}  // namespace meteo::baseline
