#include "baseline/psearch.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace meteo::baseline {

namespace {

Rng make_build_rng(std::uint64_t seed) { return Rng(seed ^ 0xca9); }

}  // namespace

PSearch::PSearch(const PSearchConfig& config)
    : config_(config),
      basis_seed_(config.seed),
      rng_(config.seed),
      can_([&] {
        Rng build = make_build_rng(config.seed);
        return CanNetwork(config.nodes, config.dimensions, build);
      }()),
      stored_(config.nodes) {}

double PSearch::gaussian_weight(vsm::KeywordId keyword,
                                std::size_t dim) const {
  // Irwin-Hall: the sum of 12 uniforms minus 6 approximates N(0, 1);
  // chained splitmix64 makes it a pure function of (keyword, dim, basis).
  std::uint64_t state = splitmix64(basis_seed_ ^
                                   (static_cast<std::uint64_t>(keyword) << 20 ^
                                    static_cast<std::uint64_t>(dim)));
  double sum = 0.0;
  for (int i = 0; i < 12; ++i) {
    state = splitmix64(state);
    sum += static_cast<double>(state >> 11) * 0x1.0p-53;
  }
  return sum - 6.0;
}

CanPoint PSearch::project(const vsm::SparseVector& v) const {
  METEO_EXPECTS(!v.empty());
  CanPoint p(config_.dimensions, 0.0);
  for (std::size_t d = 0; d < config_.dimensions; ++d) {
    double acc = 0.0;
    for (const vsm::Entry& e : v.entries()) {
      acc += e.weight * gaussian_weight(e.keyword, d);
    }
    // acc / |v| is ~N(0,1); the normal CDF squashes it into (0,1), so
    // nearby vectors land at nearby torus coordinates.
    const double z = acc / v.norm();
    double u = 0.5 * (1.0 + std::erf(z / std::sqrt(2.0)));
    if (u >= 1.0) u = std::nextafter(1.0, 0.0);
    if (u < 0.0) u = 0.0;
    p[d] = u;
  }
  return p;
}

PSearchPublishResult PSearch::publish(vsm::ItemId id,
                                      vsm::SparseVector vector) {
  const CanPoint point = project(vector);
  const std::size_t from = rng_.below(can_.node_count());
  const CanRouteResult route = can_.route(from, point);
  stored_[route.owner].push_back(vsm::StoredItem{id, vector});
  corpus_.push_back(vsm::StoredItem{id, std::move(vector)});
  return PSearchPublishResult{route.owner, route.hops};
}

PSearchQueryResult PSearch::query(const vsm::SparseVector& query,
                                  std::size_t k, std::size_t ring_radius) {
  PSearchQueryResult result;
  const CanPoint point = project(query);
  const std::size_t from = rng_.below(can_.node_count());
  const CanRouteResult route = can_.route(from, point);
  result.route_hops = route.hops;

  const std::vector<std::size_t> ring =
      can_.expanding_ring(route.owner, ring_radius, &result.flood_messages);
  result.nodes_searched = ring.size();
  for (const std::size_t node : ring) {
    for (const vsm::StoredItem& item : stored_[node]) {
      result.items.push_back(
          vsm::ScoredItem{item.id, vsm::cosine_similarity(query, item.vector)});
    }
  }
  const std::size_t take = std::min(k, result.items.size());
  std::partial_sort(result.items.begin(),
                    result.items.begin() + static_cast<std::ptrdiff_t>(take),
                    result.items.end(),
                    [](const vsm::ScoredItem& a, const vsm::ScoredItem& b) {
                      if (a.score != b.score) return a.score > b.score;
                      return a.id < b.id;
                    });
  result.items.resize(take);
  return result;
}

std::size_t PSearch::rebuild_basis(std::uint64_t new_basis_seed) {
  basis_seed_ = new_basis_seed;
  for (auto& node : stored_) node.clear();
  std::size_t messages = 0;
  for (const vsm::StoredItem& item : corpus_) {
    const CanPoint point = project(item.vector);
    const CanRouteResult route =
        can_.route(rng_.below(can_.node_count()), point);
    stored_[route.owner].push_back(item);
    messages += route.hops;
  }
  return messages;
}

}  // namespace meteo::baseline
