#include "baseline/can.hpp"

#include <algorithm>
#include <cmath>
#include <deque>

#include "common/assert.hpp"

namespace meteo::baseline {

namespace {

/// Torus distance from coordinate x to interval [lo, hi) along one axis.
double axis_distance(double lo, double hi, double x) {
  double best = 1.0;
  for (const double shift : {-1.0, 0.0, 1.0}) {
    const double v = x + shift;
    const double d = std::max({lo - v, v - hi, 0.0});
    best = std::min(best, d);
  }
  return best;
}

/// Intervals abut along an axis (including the 0/1 torus seam).
bool abuts(double a_lo, double a_hi, double b_lo, double b_hi) {
  if (a_hi == b_lo || b_hi == a_lo) return true;
  if (a_hi == 1.0 && b_lo == 0.0) return true;
  if (b_hi == 1.0 && a_lo == 0.0) return true;
  return false;
}

/// Intervals overlap with positive measure.
bool overlaps(double a_lo, double a_hi, double b_lo, double b_hi) {
  return a_lo < b_hi && b_lo < a_hi;
}

}  // namespace

bool CanZone::contains(const CanPoint& p) const {
  METEO_EXPECTS(p.size() == lo.size());
  for (std::size_t i = 0; i < lo.size(); ++i) {
    if (p[i] < lo[i] || p[i] >= hi[i]) return false;
  }
  return true;
}

double CanZone::distance_to(const CanPoint& p) const {
  METEO_EXPECTS(p.size() == lo.size());
  double sum_sq = 0.0;
  for (std::size_t i = 0; i < lo.size(); ++i) {
    const double d = axis_distance(lo[i], hi[i], p[i]);
    sum_sq += d * d;
  }
  return std::sqrt(sum_sq);
}

double CanZone::volume() const {
  double v = 1.0;
  for (std::size_t i = 0; i < lo.size(); ++i) v *= hi[i] - lo[i];
  return v;
}

CanNetwork::CanNetwork(std::size_t nodes, std::size_t dimensions, Rng& rng)
    : dims_(dimensions) {
  METEO_EXPECTS(dimensions >= 1);
  METEO_EXPECTS(nodes >= 1);
  // The first node owns the whole torus.
  zones_.push_back(CanZone{std::vector<double>(dims_, 0.0),
                           std::vector<double>(dims_, 1.0)});
  next_split_dim_.push_back(0);
  neighbors_.emplace_back();
  while (zones_.size() < nodes) {
    const CanPoint p = random_point(dims_, rng);
    split(owner_of(p), p);
  }
}

CanPoint CanNetwork::random_point(std::size_t dims, Rng& rng) {
  CanPoint p(dims);
  for (double& x : p) x = rng.uniform();
  return p;
}

const CanZone& CanNetwork::zone_of(std::size_t node) const {
  METEO_EXPECTS(node < zones_.size());
  return zones_[node];
}

std::span<const std::size_t> CanNetwork::neighbors(std::size_t node) const {
  METEO_EXPECTS(node < neighbors_.size());
  return neighbors_[node];
}

std::size_t CanNetwork::owner_of(const CanPoint& p) const {
  for (std::size_t i = 0; i < zones_.size(); ++i) {
    if (zones_[i].contains(p)) return i;
  }
  METEO_ASSERT(false && "zones must partition the torus");
  return 0;
}

bool CanNetwork::adjacent(const CanZone& a, const CanZone& b,
                          std::size_t dims) {
  // Adjacent across one face: abutting in exactly one axis, overlapping in
  // all others.
  bool found_abutting = false;
  for (std::size_t i = 0; i < dims; ++i) {
    if (overlaps(a.lo[i], a.hi[i], b.lo[i], b.hi[i])) continue;
    if (abuts(a.lo[i], a.hi[i], b.lo[i], b.hi[i]) && !found_abutting) {
      found_abutting = true;
      continue;
    }
    return false;  // separated (or abutting in 2+ axes: corner contact)
  }
  return found_abutting;
}

void CanNetwork::split(std::size_t owner, const CanPoint& joiner_point) {
  METEO_EXPECTS(zones_[owner].contains(joiner_point));
  const std::size_t dim = next_split_dim_[owner] % dims_;
  CanZone& old_zone = zones_[owner];
  const double mid = (old_zone.lo[dim] + old_zone.hi[dim]) / 2.0;

  CanZone new_zone = old_zone;
  // Owner keeps the half not containing the joiner's point.
  if (joiner_point[dim] < mid) {
    new_zone.hi[dim] = mid;   // joiner: lower half
    old_zone.lo[dim] = mid;
  } else {
    new_zone.lo[dim] = mid;   // joiner: upper half
    old_zone.hi[dim] = mid;
  }

  const std::size_t joiner = zones_.size();
  zones_.push_back(std::move(new_zone));
  next_split_dim_[owner] = dim + 1;
  next_split_dim_.push_back(dim + 1);
  neighbors_.emplace_back();

  // Incremental neighbor maintenance: candidates are the owner's previous
  // neighborhood plus the owner/joiner pair itself.
  std::vector<std::size_t> affected = neighbors_[owner];
  affected.push_back(owner);
  affected.push_back(joiner);
  for (const std::size_t x : affected) {
    for (const std::size_t y : {owner, joiner}) {
      if (x == y) continue;
      auto& xs = neighbors_[x];
      auto& ys = neighbors_[y];
      xs.erase(std::remove(xs.begin(), xs.end(), y), xs.end());
      ys.erase(std::remove(ys.begin(), ys.end(), x), ys.end());
      if (adjacent(zones_[x], zones_[y], dims_)) {
        xs.push_back(y);
        ys.push_back(x);
      }
    }
  }
}

CanRouteResult CanNetwork::route(std::size_t from, const CanPoint& p) const {
  METEO_EXPECTS(from < zones_.size());
  CanRouteResult result;
  std::size_t cur = from;
  const std::size_t guard = 8 * zones_.size() + 64;
  while (!zones_[cur].contains(p) && result.hops < guard) {
    std::size_t best = cur;
    double best_dist = zones_[cur].distance_to(p);
    for (const std::size_t n : neighbors_[cur]) {
      const double d = zones_[n].distance_to(p);
      if (d < best_dist) {
        best = n;
        best_dist = d;
      }
    }
    if (best == cur) break;  // local minimum (should not happen when healthy)
    cur = best;
    ++result.hops;
  }
  result.owner = cur;
  return result;
}

std::vector<std::size_t> CanNetwork::expanding_ring(
    std::size_t center, std::size_t radius, std::size_t* messages) const {
  METEO_EXPECTS(center < zones_.size());
  std::vector<std::size_t> visited;
  std::vector<bool> seen(zones_.size(), false);
  std::size_t msg_count = 0;
  std::deque<std::pair<std::size_t, std::size_t>> frontier;  // node, depth
  frontier.emplace_back(center, 0);
  seen[center] = true;
  while (!frontier.empty()) {
    const auto [node, depth] = frontier.front();
    frontier.pop_front();
    visited.push_back(node);
    if (depth == radius) continue;
    for (const std::size_t n : neighbors_[node]) {
      ++msg_count;  // every forwarded copy costs a message
      if (!seen[n]) {
        seen[n] = true;
        frontier.emplace_back(n, depth + 1);
      }
    }
  }
  if (messages != nullptr) *messages = msg_count;
  return visited;
}

}  // namespace meteo::baseline
